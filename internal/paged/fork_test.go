package paged

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// snapshot collects a table's contents via Range.
func snapshot(tab *Table[uint64]) map[uint64]uint64 {
	out := make(map[uint64]uint64)
	tab.Range(func(idx, v uint64) { out[idx] = v })
	return out
}

func TestForkObservesParentContents(t *testing.T) {
	tab := New[uint64](4 << 20)
	idxs := []uint64{0, 511, 512, 1 << 15, 1<<22 - 1, 3 << 20}
	for i, idx := range idxs {
		tab.Set(idx, uint64(i)*3+1)
	}
	child := tab.Fork()
	if child.Len() != tab.Len() || child.Slots() != tab.Slots() {
		t.Fatalf("child Len/Slots = %d/%d, want %d/%d", child.Len(), child.Slots(), tab.Len(), tab.Slots())
	}
	if !reflect.DeepEqual(snapshot(child), snapshot(tab)) {
		t.Fatal("child contents differ from parent at fork time")
	}
}

func TestForkIsolatesWritesBothDirections(t *testing.T) {
	tab := New[uint64](1 << 20)
	for i := uint64(0); i < 2000; i++ {
		tab.Set(i*7, i)
	}
	child := tab.Fork()

	// Parent writes are invisible to the child, and vice versa; both
	// sides exercise overwrite, fresh insert and delete on shared pages.
	tab.Set(0, 999)
	tab.Set(1<<19, 1)
	tab.Delete(7)
	child.Set(14, 888)
	child.Delete(21)
	child.Set(1<<19+5, 2)

	if v, _ := child.Get(0); v != 0 {
		t.Fatalf("parent overwrite leaked into child: %d", v)
	}
	if _, ok := child.Get(7); !ok {
		t.Fatal("parent delete leaked into child")
	}
	if _, ok := child.Get(1 << 19); ok {
		t.Fatal("parent insert leaked into child")
	}
	if v, _ := tab.Get(14); v == 888 {
		t.Fatal("child overwrite leaked into parent")
	}
	if _, ok := tab.Get(21); !ok {
		t.Fatal("child delete leaked into parent")
	}
	if _, ok := tab.Get(1<<19 + 5); ok {
		t.Fatal("child insert leaked into parent")
	}
}

func TestForkOfFork(t *testing.T) {
	tab := New[uint64](1 << 16)
	for i := uint64(0); i < 100; i++ {
		tab.Set(i, i)
	}
	c1 := tab.Fork()
	c1.Set(5, 500)
	c2 := c1.Fork()
	c2.Set(6, 600)
	tab.Set(7, 700)

	if v, _ := c2.Get(5); v != 500 {
		t.Fatalf("grandchild lost child write: %d", v)
	}
	if v, _ := c1.Get(6); v == 600 {
		t.Fatal("grandchild write leaked into child")
	}
	if v, _ := c2.Get(7); v == 700 {
		t.Fatal("root write leaked into grandchild")
	}
	if v, _ := tab.Get(5); v == 500 {
		t.Fatal("child write leaked into root")
	}
}

func TestForkThenClearBothSides(t *testing.T) {
	tab := New[uint64](1 << 16)
	for i := uint64(0); i < 3000; i++ {
		tab.Set(i, i+1)
	}
	child := tab.Fork()
	want := snapshot(tab)

	// Parent Clear must not disturb the child (its pages are shared).
	tab.Clear()
	if tab.Len() != 0 {
		t.Fatalf("parent Len after Clear = %d", tab.Len())
	}
	if !reflect.DeepEqual(snapshot(child), want) {
		t.Fatal("parent Clear corrupted child")
	}
	// Parent refills after the Clear.
	tab.Set(42, 4242)
	if v, _ := child.Get(42); v == 4242 {
		t.Fatal("post-Clear parent write leaked into child")
	}

	// Child Clear must not disturb the (refilled) parent.
	child.Clear()
	if child.Len() != 0 {
		t.Fatalf("child Len after Clear = %d", child.Len())
	}
	if v, ok := tab.Get(42); !ok || v != 4242 {
		t.Fatalf("child Clear corrupted parent: (%d, %v)", v, ok)
	}
}

func TestForkRandomizedDifferential(t *testing.T) {
	// A forked table and an eagerly deep-copied reference must stay
	// indistinguishable under a random operation mix on both sides.
	rng := rand.New(rand.NewSource(42))
	tab := New[uint64](1 << 18)
	for i := 0; i < 5000; i++ {
		tab.Set(uint64(rng.Intn(1<<18)), rng.Uint64())
	}
	child := tab.Fork()
	refParent, refChild := snapshot(tab), snapshot(child)

	apply := func(tab *Table[uint64], ref map[uint64]uint64) {
		idx := uint64(rng.Intn(1 << 18))
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			tab.Set(idx, v)
			ref[idx] = v
		case 1:
			tab.Delete(idx)
			delete(ref, idx)
		case 2:
			v, ok := tab.Get(idx)
			rv, rok := ref[idx]
			if ok != rok || v != rv {
				t.Fatalf("Get(%d) = (%d, %v), want (%d, %v)", idx, v, ok, rv, rok)
			}
		}
	}
	for i := 0; i < 20000; i++ {
		if rng.Intn(2) == 0 {
			apply(tab, refParent)
		} else {
			apply(child, refChild)
		}
	}
	if !reflect.DeepEqual(snapshot(tab), refParent) {
		t.Fatal("parent diverged from reference")
	}
	if !reflect.DeepEqual(snapshot(child), refChild) {
		t.Fatal("child diverged from reference")
	}
	if tab.Len() != len(refParent) || child.Len() != len(refChild) {
		t.Fatalf("Len drift: parent %d/%d child %d/%d",
			tab.Len(), len(refParent), child.Len(), len(refChild))
	}
}

func TestForkConcurrentUseIsRaceFree(t *testing.T) {
	// Parent and forks mutate concurrently after the fork point; shared
	// pages are cloned, never written in place, so this must be clean
	// under -race.
	tab := New[uint64](1 << 18)
	for i := uint64(0); i < 4096; i++ {
		tab.Set(i*17%(1<<18), i)
	}
	const forks = 4
	children := make([]*Table[uint64], forks)
	for i := range children {
		children[i] = tab.Fork()
	}
	var wg sync.WaitGroup
	work := func(tab *Table[uint64], seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			idx := uint64(rng.Intn(1 << 18))
			switch rng.Intn(3) {
			case 0:
				tab.Set(idx, rng.Uint64())
			case 1:
				tab.Delete(idx)
			default:
				tab.Get(idx)
			}
		}
	}
	wg.Add(forks + 1)
	go work(tab, 1)
	for i, c := range children {
		go work(c, int64(i+2))
	}
	wg.Wait()
}

func BenchmarkFork(b *testing.B) {
	tab := New[uint64](1 << 20)
	for i := uint64(0); i < 1<<17; i++ {
		tab.Set(i, i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tab.Fork()
	}
}
