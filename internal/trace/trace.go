// Package trace records and replays memory traces at the CPU-memory
// interface (loads, stores, cache-line persists, fences, with the
// issuing core), in the spirit of NVMain's trace-driven mode: capture
// a workload once, then replay it against any scheme or machine
// configuration — or import traces produced elsewhere.
//
// The format is line-oriented text, one access per line:
//
//	L <core> <addr-hex> <size>     load
//	S <core> <addr-hex> <size>     store
//	P <core> <addr-hex> <size>     persist (CLWB range + implied data)
//	F <core>                       fence (SFENCE)
//
// Content is not recorded: under counter-mode encryption every write
// costs the same regardless of its bytes, so replay synthesizes
// deterministic data from (address, sequence) and traffic/timing
// results are identical to the original run.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nvmstar/internal/heap"
)

// Kind is the access type.
type Kind uint8

// Access kinds.
const (
	KindLoad Kind = iota
	KindStore
	KindPersist
	KindFence
)

func (k Kind) letter() byte {
	switch k {
	case KindLoad:
		return 'L'
	case KindStore:
		return 'S'
	case KindPersist:
		return 'P'
	case KindFence:
		return 'F'
	default:
		return '?'
	}
}

// Entry is one traced access.
type Entry struct {
	Kind Kind
	Core int
	Addr uint64
	Size int
}

// Writer streams entries to an io.Writer.
type Writer struct {
	bw    *bufio.Writer
	count uint64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{bw: bufio.NewWriter(w)} }

// Append writes one entry.
func (w *Writer) Append(e Entry) error {
	w.count++
	var err error
	if e.Kind == KindFence {
		_, err = fmt.Fprintf(w.bw, "F %d\n", e.Core)
	} else {
		_, err = fmt.Fprintf(w.bw, "%c %d %x %d\n", e.Kind.letter(), e.Core, e.Addr, e.Size)
	}
	return err
}

// Count returns the number of entries appended.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams entries from an io.Reader.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	return &Reader{sc: sc}
}

// Next returns the next entry, or io.EOF.
func (r *Reader) Next() (Entry, error) {
	for r.sc.Scan() {
		r.line++
		text := strings.TrimSpace(r.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		e, err := parse(text)
		if err != nil {
			return Entry{}, fmt.Errorf("trace: line %d: %w", r.line, err)
		}
		return e, nil
	}
	if err := r.sc.Err(); err != nil {
		return Entry{}, err
	}
	return Entry{}, io.EOF
}

// ReadAll consumes the stream.
func ReadAll(r io.Reader) ([]Entry, error) {
	tr := NewReader(r)
	var out []Entry
	for {
		e, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

func parse(text string) (Entry, error) {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return Entry{}, fmt.Errorf("empty record")
	}
	var e Entry
	switch fields[0] {
	case "L":
		e.Kind = KindLoad
	case "S":
		e.Kind = KindStore
	case "P":
		e.Kind = KindPersist
	case "F":
		e.Kind = KindFence
	default:
		return Entry{}, fmt.Errorf("unknown kind %q", fields[0])
	}
	if e.Kind == KindFence {
		if len(fields) != 2 {
			return Entry{}, fmt.Errorf("fence takes one field, got %d", len(fields)-1)
		}
		core, err := strconv.Atoi(fields[1])
		if err != nil {
			return Entry{}, err
		}
		e.Core = core
		return e, nil
	}
	if len(fields) != 4 {
		return Entry{}, fmt.Errorf("access takes three fields, got %d", len(fields)-1)
	}
	core, err := strconv.Atoi(fields[1])
	if err != nil {
		return Entry{}, err
	}
	addr, err := strconv.ParseUint(fields[2], 16, 64)
	if err != nil {
		return Entry{}, err
	}
	size, err := strconv.Atoi(fields[3])
	if err != nil {
		return Entry{}, err
	}
	if size <= 0 {
		return Entry{}, fmt.Errorf("non-positive size %d", size)
	}
	e.Core, e.Addr, e.Size = core, addr, size
	return e, nil
}

// Recorder wraps a heap.Memory and mirrors every access into a Writer.
// The core is sampled through coreFn at each access (the simulator's
// runner switches cores between operations).
type Recorder struct {
	Inner  heap.Memory
	CoreFn func() int
	W      *Writer
	Err    error // first append error
}

func (t *Recorder) emit(e Entry) {
	if t.Err == nil {
		t.Err = t.W.Append(e)
	}
}

// Load implements heap.Memory.
func (t *Recorder) Load(addr uint64, buf []byte) {
	t.emit(Entry{Kind: KindLoad, Core: t.CoreFn(), Addr: addr, Size: len(buf)})
	t.Inner.Load(addr, buf)
}

// Store implements heap.Memory.
func (t *Recorder) Store(addr uint64, data []byte) {
	t.emit(Entry{Kind: KindStore, Core: t.CoreFn(), Addr: addr, Size: len(data)})
	t.Inner.Store(addr, data)
}

// Persist implements heap.Memory.
func (t *Recorder) Persist(addr uint64, size int) {
	t.emit(Entry{Kind: KindPersist, Core: t.CoreFn(), Addr: addr, Size: size})
	t.Inner.Persist(addr, size)
}

// Fence implements heap.Memory.
func (t *Recorder) Fence() {
	t.emit(Entry{Kind: KindFence, Core: t.CoreFn()})
	t.Inner.Fence()
}

// CoreSetter selects the issuing core before an access is replayed
// (implemented by sim.Machine).
type CoreSetter interface {
	SetCore(core int)
}

// Replay drives every entry through mem. Store data is synthesized
// deterministically from (address, sequence). maxCore bounds the core
// index (entries beyond it wrap), letting a trace from an 8-core run
// replay on a smaller machine.
func Replay(mem heap.Memory, cs CoreSetter, entries []Entry, maxCore int) error {
	if maxCore <= 0 {
		return fmt.Errorf("trace: maxCore must be positive")
	}
	buf := make([]byte, 0, 256)
	for seq, e := range entries {
		cs.SetCore(e.Core % maxCore)
		switch e.Kind {
		case KindLoad:
			if cap(buf) < e.Size {
				buf = make([]byte, e.Size)
			}
			mem.Load(e.Addr, buf[:e.Size])
		case KindStore:
			if cap(buf) < e.Size {
				buf = make([]byte, e.Size)
			}
			b := buf[:e.Size]
			fill := byte(e.Addr>>6) ^ byte(seq)
			for i := range b {
				b[i] = fill ^ byte(i)
			}
			mem.Store(e.Addr, b)
		case KindPersist:
			mem.Persist(e.Addr, e.Size)
		case KindFence:
			mem.Fence()
		}
	}
	return nil
}
