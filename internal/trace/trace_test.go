package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"nvmstar/internal/cache"
	"nvmstar/internal/sim"
	"nvmstar/internal/trace"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	entries := []trace.Entry{
		{Kind: trace.KindLoad, Core: 0, Addr: 0x40, Size: 8},
		{Kind: trace.KindStore, Core: 3, Addr: 0x1000, Size: 64},
		{Kind: trace.KindPersist, Core: 1, Addr: 0x80, Size: 128},
		{Kind: trace.KindFence, Core: 2},
	}
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for _, e := range entries {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(entries)) {
		t.Fatalf("count = %d", w.Count())
	}
	got, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("read %d entries", len(got))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nL 0 40 8\n  \nF 1\n"
	got, err := trace.ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("entries = %d", len(got))
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"X 0 40 8\n",
		"L 0 zz 8\n",
		"L 0 40\n",
		"S 0 40 0\n",
		"F\n",
	} {
		if _, err := trace.ReadAll(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func machineCfg(scheme string) sim.Config {
	cfg := sim.Default()
	cfg.Cores = 4
	cfg.DataBytes = 16 << 20
	cfg.L1 = cache.Config{SizeBytes: 8 << 10, Ways: 2}
	cfg.L2 = cache.Config{SizeBytes: 32 << 10, Ways: 8}
	cfg.L3 = cache.Config{SizeBytes: 128 << 10, Ways: 8}
	cfg.MetaCache = cache.Config{SizeBytes: 64 << 10, Ways: 8}
	cfg.Scheme = scheme
	return cfg
}

// TestRecordReplayTrafficMatches records a workload and replays the
// trace on an identical fresh machine: address streams are identical,
// so NVM traffic must match exactly.
func TestRecordReplayTrafficMatches(t *testing.T) {
	cfg := machineCfg("star")
	rec, err := sim.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	recorder := &trace.Recorder{Inner: rec, CoreFn: rec.CurrentCore, W: tw}
	s, err := rec.NewSessionOn("queue", recorder)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StepN(2000); err != nil {
		t.Fatal(err)
	}
	if recorder.Err != nil {
		t.Fatal(recorder.Err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	recStats := rec.Engine().Device().Stats()

	entries, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Replay(rep, rep, entries, cfg.Cores); err != nil {
		t.Fatal(err)
	}
	if rep.Err() != nil {
		t.Fatal(rep.Err())
	}
	repStats := rep.Engine().Device().Stats()
	if recStats.Writes != repStats.Writes {
		t.Fatalf("writes: recorded %d, replayed %d", recStats.Writes, repStats.Writes)
	}
	if recStats.Reads != repStats.Reads {
		t.Fatalf("reads: recorded %d, replayed %d", recStats.Reads, repStats.Reads)
	}
}

// TestReplayAcrossSchemes replays one trace under every scheme — the
// startrace sweep use case — and checks the paper's write ordering.
func TestReplayAcrossSchemes(t *testing.T) {
	cfg := machineCfg("wb")
	m, err := sim.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	recorder := &trace.Recorder{Inner: m, CoreFn: m.CurrentCore, W: tw}
	s, err := m.NewSessionOn("array", recorder)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StepN(1500); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	writes := map[string]uint64{}
	for _, scheme := range []string{"wb", "star", "anubis"} {
		mm, err := sim.NewMachine(machineCfg(scheme))
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Replay(mm, mm, entries, 4); err != nil {
			t.Fatal(err)
		}
		if mm.Err() != nil {
			t.Fatal(mm.Err())
		}
		writes[scheme] = mm.Engine().Device().Stats().Writes
	}
	if !(writes["wb"] <= writes["star"] && writes["star"] < writes["anubis"]) {
		t.Fatalf("scheme ordering violated on replay: %v", writes)
	}
}

func TestReplayValidatesMaxCore(t *testing.T) {
	m, err := sim.NewMachine(machineCfg("wb"))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Replay(m, m, nil, 0); err == nil {
		t.Fatal("maxCore 0 accepted")
	}
}
