// Package shapes turns EXPERIMENTS.md's paper-vs-measured claims into
// executable checks: it runs the evaluation matrix and verifies the
// qualitative *shape* of every result — who wins, by roughly what
// factor, where the knees fall — against the paper's findings. The
// starreport command renders the outcome as a markdown report, and the
// repository's long-running shape test fails if a change to the
// simulator breaks any reproduced relationship.
package shapes

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"nvmstar/internal/experiments"
)

// Check is one verified relationship. Values carries the measured
// numbers behind Detail in order, machine-readable, so the regression
// comparator (internal/regress, cmd/stardiff) can diff two reports'
// measurements against a drift tolerance instead of re-parsing the
// formatted Detail string.
type Check struct {
	Name   string
	Pass   bool
	Detail string    // measured values, formatted for the report
	Values []float64 `json:",omitempty"` // the numeric measurements behind Detail
}

func check(name string, pass bool, format string, args ...any) Check {
	c := Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)}
	for _, a := range args {
		switch v := a.(type) {
		case float64:
			c.Values = append(c.Values, v)
		case int:
			c.Values = append(c.Values, float64(v))
		case uint64:
			c.Values = append(c.Values, float64(v))
		}
	}
	return c
}

// Report is the full evaluation with its checks.
type Report struct {
	Scheme []experiments.SchemeRow
	Table2 []experiments.Table2Row
	Fig14a []experiments.Fig14aRow
	Fig14b []experiments.Fig14bRow
	Checks []Check
}

// WriteFile marshals the report (indented, trailing newline) so it
// can be committed as a regression baseline and compared by stardiff.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReport loads a report written by WriteFile.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("shapes: %s: %w", path, err)
	}
	return &rep, nil
}

// Passed reports whether every check passed.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// EvaluateCtx runs the evaluation matrix on r's worker pool and checks
// every shape; ctx cancellation aborts the sweep mid-cell.
func EvaluateCtx(ctx context.Context, r *experiments.Runner) (*Report, error) {
	rep := &Report{}

	var err error
	rep.Scheme, err = r.SchemeComparison(ctx, []string{"wb", "star", "anubis", "strict"})
	if err != nil {
		return nil, err
	}
	rep.Table2, err = r.Table2(ctx, []int{2, 4, 8, 16, 32})
	if err != nil {
		return nil, err
	}
	rep.Fig14a, err = r.Fig14a(ctx)
	if err != nil {
		return nil, err
	}
	rep.Fig14b, err = r.Fig14b(ctx, nil)
	if err != nil {
		return nil, err
	}

	rep.Checks = append(rep.Checks, rep.schemeChecks()...)
	rep.Checks = append(rep.Checks, rep.table2Checks()...)
	rep.Checks = append(rep.Checks, rep.fig14Checks()...)
	return rep, nil
}

// avg averages f over the rows of one scheme.
func avg(rows []experiments.SchemeRow, scheme string, f func(experiments.SchemeRow) float64) float64 {
	var sum float64
	n := 0
	for _, r := range rows {
		if r.Scheme == scheme {
			sum += f(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (r *Report) schemeChecks() []Check {
	writeRatio := func(s experiments.SchemeRow) float64 { return s.WriteRatio }
	ipcRatio := func(s experiments.SchemeRow) float64 { return s.IPCRatio }
	energyRatio := func(s experiments.SchemeRow) float64 { return s.EnergyRatio }

	starW := avg(r.Scheme, "star", writeRatio)
	anubisW := avg(r.Scheme, "anubis", writeRatio)
	strictW := avg(r.Scheme, "strict", writeRatio)
	starIPC := avg(r.Scheme, "star", ipcRatio)
	anubisIPC := avg(r.Scheme, "anubis", ipcRatio)
	starE := avg(r.Scheme, "star", energyRatio)
	anubisE := avg(r.Scheme, "anubis", energyRatio)

	var checks []Check
	checks = append(checks,
		check("Fig11: STAR write traffic ~1.08x WB (paper 1.08x)",
			starW >= 1.0 && starW <= 1.30,
			"measured %.3fx", starW),
		check("Fig11: Anubis write traffic ~2x WB (paper 2x)",
			anubisW >= 1.8 && anubisW <= 2.2,
			"measured %.3fx", anubisW),
		check("Fig11: strict persistence >> Anubis (paper up to 9x)",
			strictW > anubisW+0.5,
			"measured %.2fx vs %.2fx", strictW, anubisW),
		check("Fig11: STAR removes >= 85% of Anubis's extra writes (paper 92%)",
			anubisW-1 > 0 && (anubisW-starW)/(anubisW-1) >= 0.85,
			"measured %.0f%%", 100*(anubisW-starW)/(anubisW-1)),
		check("Fig12: STAR IPC >= 0.95x WB (paper 0.98x)",
			starIPC >= 0.95,
			"measured %.3f", starIPC),
		check("Fig12: STAR IPC above Anubis everywhere (paper 0.98 vs 0.90)",
			starIPC > anubisIPC,
			"measured %.3f vs %.3f", starIPC, anubisIPC),
		check("Fig13: STAR energy well below Anubis (paper +4% vs +46%)",
			starE < anubisE-0.3,
			"measured %.2fx vs %.2fx", starE, anubisE),
	)

	// Worst-case workloads for STAR must be the low-locality ones.
	var worst string
	var worstRatio float64
	for _, row := range r.Scheme {
		if row.Scheme == "star" && row.WriteRatio > worstRatio {
			worst, worstRatio = row.Workload, row.WriteRatio
		}
	}
	checks = append(checks,
		check("Fig10/11: STAR's worst write overhead is a low-locality workload (paper: hash, array)",
			worst == "hash" || worst == "array",
			"measured worst: %s at %.2fx", worst, worstRatio))
	return checks
}

func (r *Report) table2Checks() []Check {
	monotonic := true
	for i := 1; i < len(r.Table2); i++ {
		if r.Table2[i].HitRatio < r.Table2[i-1].HitRatio {
			monotonic = false
		}
	}
	detail := ""
	for _, row := range r.Table2 {
		detail += fmt.Sprintf("%d:%.1f%% ", row.ADRLines, 100*row.HitRatio)
	}
	checks := []Check{
		check("TableII: hit ratio rises with ADR lines (paper 32.9%..82.2%)",
			monotonic, "%s", detail),
	}
	if len(r.Table2) >= 5 {
		gainEarly := r.Table2[3].HitRatio - r.Table2[2].HitRatio // 8 -> 16
		gainLate := r.Table2[4].HitRatio - r.Table2[3].HitRatio  // 16 -> 32
		checks = append(checks,
			check("TableII: diminishing returns past 16 lines (paper's operating point)",
				gainLate <= gainEarly+0.05,
				"gain 8->16: %.1fpp, 16->32: %.1fpp", 100*gainEarly, 100*gainLate))
	}
	return checks
}

func (r *Report) fig14Checks() []Check {
	var sum float64
	for _, row := range r.Fig14a {
		sum += row.DirtyFrac
	}
	dirtyAvg := sum / float64(len(r.Fig14a))

	checks := []Check{
		check("Fig14a: most of the metadata cache is dirty at crash (paper ~78%)",
			dirtyAvg >= 0.40 && dirtyAvg <= 1.0,
			"measured %.1f%%", 100*dirtyAvg),
	}
	if n := len(r.Fig14b); n >= 2 {
		last := r.Fig14b[n-1]
		first := r.Fig14b[0]
		ratio := last.StarSeconds / last.AnubisSeconds
		checks = append(checks,
			check("Fig14b: recovery time grows with metadata cache size",
				last.StarSeconds > first.StarSeconds && last.AnubisSeconds > first.AnubisSeconds,
				"STAR %.4fs -> %.4fs", first.StarSeconds, last.StarSeconds),
			check("Fig14b: STAR/Anubis recovery ratio ~2.5x at large caches (paper 2.5x)",
				ratio >= 1.3 && ratio <= 4.0,
				"measured %.2fx", ratio),
			check("Fig14b: recovery stays far below a POST's 10-100s (paper <0.1s)",
				last.StarSeconds < 1.0,
				"measured %.4fs", last.StarSeconds))
	}
	return checks
}

// Markdown renders the report.
func (r *Report) Markdown() string { return r.markdown(nil) }

// MarkdownWithDrift renders the report with an extra per-check drift
// column (keyed by check name) — starreport fills it from a stardiff
// comparison against a committed baseline report, so the reproduction
// report and its regression verdict read as one table.
func (r *Report) MarkdownWithDrift(drift map[string]string) string { return r.markdown(drift) }

func (r *Report) markdown(drift map[string]string) string {
	out := "# Shape report: paper vs. measured\n\n"
	if drift == nil {
		out += "| check | result | measured |\n|---|---|---|\n"
	} else {
		out += "| check | result | measured | drift vs baseline |\n|---|---|---|---|\n"
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "**FAIL**"
		}
		if drift == nil {
			out += fmt.Sprintf("| %s | %s | %s |\n", c.Name, status, c.Detail)
			continue
		}
		d := drift[c.Name]
		if d == "" {
			d = "—"
		}
		out += fmt.Sprintf("| %s | %s | %s | %s |\n", c.Name, status, c.Detail, d)
	}
	out += "\n## Figs. 11-13 (normalized to WB)\n\n"
	out += "| workload | scheme | writes/op | W vs WB | IPC vs WB | E vs WB |\n|---|---|---|---|---|---|\n"
	rows := append([]experiments.SchemeRow(nil), r.Scheme...)
	experiments.SortSchemeRows(rows)
	for _, row := range rows {
		out += fmt.Sprintf("| %s | %s | %.2f | %.2fx | %.2f | %.2fx |\n",
			row.Workload, row.Scheme, row.WritesPerOp, row.WriteRatio, row.IPCRatio, row.EnergyRatio)
	}
	out += "\n## Table II\n\n| ADR lines | hit ratio |\n|---|---|\n"
	for _, row := range r.Table2 {
		out += fmt.Sprintf("| %d | %.2f%% |\n", row.ADRLines, 100*row.HitRatio)
	}
	out += "\n## Fig. 14\n\n| metadata cache | stale nodes | STAR | Anubis |\n|---|---|---|---|\n"
	for _, row := range r.Fig14b {
		out += fmt.Sprintf("| %d KiB | %d | %.4fs | %.4fs |\n",
			row.MetaCacheBytes>>10, row.StaleNodes, row.StarSeconds, row.AnubisSeconds)
	}
	return out
}
