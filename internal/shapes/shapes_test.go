package shapes

import (
	"context"
	"strings"
	"testing"

	"nvmstar/internal/experiments"
	"nvmstar/internal/sim"
)

// TestPaperShapes is the reproduction gate: it runs a reduced version
// of the full evaluation and asserts every relationship the paper
// reports. It is the heaviest test in the repository; -short skips it.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape evaluation is slow")
	}
	r := experiments.NewRunner(
		experiments.WithOps(5000),
		experiments.WithConfig(func() sim.Config {
			cfg := sim.Default()
			cfg.DataBytes = 64 << 20
			cfg.MetaCache.SizeBytes = 256 << 10
			return cfg
		}))
	rep, err := EvaluateCtx(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Checks {
		if !c.Pass {
			t.Errorf("FAIL %s (%s)", c.Name, c.Detail)
		} else {
			t.Logf("pass %s (%s)", c.Name, c.Detail)
		}
	}
	md := rep.Markdown()
	if !strings.Contains(md, "Table II") || !strings.Contains(md, "Fig. 14") {
		t.Error("markdown report incomplete")
	}
	if rep.Passed() != !t.Failed() {
		t.Error("Passed() disagrees with individual checks")
	}
}
