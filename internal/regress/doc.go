package regress

import (
	"encoding/json"
	"fmt"
	"os"

	"nvmstar/internal/benchfmt"
	"nvmstar/internal/provenance"
	"nvmstar/internal/shapes"
)

// Doc is one loaded comparison artifact with its detected kind;
// exactly one of the payload fields is set.
type Doc struct {
	Kind     string // "bench", "shapes", "manifest" or "latency"
	Bench    *benchfmt.Doc
	Shapes   *shapes.Report
	Manifest *provenance.Manifest
	Latency  *LatencyDoc
}

// ReadDoc loads path and sniffs which artifact it is: a provenance
// manifest ("schema" + "cells"), a tail-latency document ("latency"),
// a benchmark document ("results"), or a shapes report ("Checks").
func ReadDoc(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(b, &probe); err != nil {
		return nil, fmt.Errorf("regress: %s: not a JSON object: %w", path, err)
	}
	switch {
	case probe["schema"] != nil && probe["cells"] != nil:
		m, err := provenance.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return &Doc{Kind: "manifest", Manifest: m}, nil
	case probe["latency"] != nil:
		d, err := ReadLatencyDoc(path)
		if err != nil {
			return nil, err
		}
		return &Doc{Kind: "latency", Latency: d}, nil
	case probe["results"] != nil:
		d, err := benchfmt.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return &Doc{Kind: "bench", Bench: d}, nil
	case probe["Checks"] != nil:
		r, err := shapes.ReadReport(path)
		if err != nil {
			return nil, err
		}
		return &Doc{Kind: "shapes", Shapes: r}, nil
	}
	return nil, fmt.Errorf("regress: %s: unrecognized document (expected a BENCH doc, a shapes report, a run manifest or a latency doc)", path)
}

// CompareDocs dispatches on the documents' kind, which must match.
func CompareDocs(old, new *Doc, tol Tolerance) (*Verdict, error) {
	if old.Kind != new.Kind {
		return nil, fmt.Errorf("regress: cannot compare a %s document against a %s document", old.Kind, new.Kind)
	}
	switch old.Kind {
	case "bench":
		return CompareBench(old.Bench, new.Bench, tol)
	case "shapes":
		return CompareShapes(old.Shapes, new.Shapes, tol), nil
	case "manifest":
		return CompareManifests(old.Manifest, new.Manifest, tol)
	case "latency":
		return CompareLatency(old.Latency, new.Latency, tol), nil
	}
	return nil, fmt.Errorf("regress: unknown document kind %q", old.Kind)
}
