package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// LatencyDocSchema identifies a tail-latency document.
const LatencyDocSchema = "nvmstar/latency/v1"

// LatencyDoc is the committed tail-latency artifact: one row per
// (workload, scheme, op) carrying the merged observation count and the
// derived percentile estimates, as rendered by starreport -latency-out.
// stardiff compares two of them and enforces the absolute p99 SLO
// ceilings of the tolerance file.
type LatencyDoc struct {
	Schema  string       `json:"schema"`
	Latency []LatencyRow `json:"latency"`
}

// LatencyRow is one (workload, scheme, op) tail summary.
type LatencyRow struct {
	Workload string  `json:"workload"`
	Scheme   string  `json:"scheme"`
	Op       string  `json:"op"`
	Count    uint64  `json:"count"`
	P50Ns    float64 `json:"p50_ns"`
	P90Ns    float64 `json:"p90_ns"`
	P99Ns    float64 `json:"p99_ns"`
	P999Ns   float64 `json:"p999_ns"`
	MaxNs    float64 `json:"max_ns"`
}

func (r LatencyRow) key() string { return r.Workload + "/" + r.Scheme + "/" + r.Op }

// WriteLatencyDoc marshals rows as a latency document at path.
func WriteLatencyDoc(path string, rows []LatencyRow) error {
	doc := LatencyDoc{Schema: LatencyDocSchema, Latency: rows}
	b, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadLatencyDoc loads and validates a latency document.
func ReadLatencyDoc(path string) (*LatencyDoc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc LatencyDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("regress: %s: %w", path, err)
	}
	if doc.Schema != LatencyDocSchema {
		return nil, fmt.Errorf("regress: %s: schema %q, want %q", path, doc.Schema, LatencyDocSchema)
	}
	return &doc, nil
}

// CompareLatency compares two tail-latency documents: per-row p99
// drift against tol.LatencyFrac (lower is better), then the absolute
// SLO ceilings of tol.LatencyP99CeilingsNs — keyed "scheme/op" —
// enforced on the NEW document only, so a self-comparison (old == new)
// still gates, the same binding the metric-floor gate uses. A gated
// (scheme, op) with no observed rows regresses: silently losing the
// measurement must not pass the gate.
func CompareLatency(old, new *LatencyDoc, tol Tolerance) *Verdict {
	v := &Verdict{Kind: "latency"}
	newByKey := map[string]LatencyRow{}
	for _, r := range new.Latency {
		newByKey[r.key()] = r
	}
	seen := map[string]bool{}
	for _, o := range old.Latency {
		seen[o.key()] = true
		n, ok := newByKey[o.key()]
		if !ok {
			v.add(Item{Kind: "latency", Name: o.key(), Status: StatusMissing,
				Old: fmt.Sprintf("p99=%.1fns", o.P99Ns)})
			continue
		}
		delta := relDelta(o.P99Ns, n.P99Ns)
		v.add(Item{
			Kind: "latency", Name: o.key(),
			Status:    classify(delta, tol.LatencyFrac),
			Old:       fmt.Sprintf("p99=%.1fns", o.P99Ns),
			New:       fmt.Sprintf("p99=%.1fns", n.P99Ns),
			DeltaFrac: delta,
		})
	}
	for _, n := range new.Latency {
		if !seen[n.key()] {
			v.add(Item{Kind: "latency", Name: n.key(), Status: StatusAdded,
				New: fmt.Sprintf("p99=%.1fns", n.P99Ns)})
		}
	}

	keys := make([]string, 0, len(tol.LatencyP99CeilingsNs))
	for k := range tol.LatencyP99CeilingsNs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ceiling := tol.LatencyP99CeilingsNs[k]
		matched := false
		for _, n := range new.Latency {
			if n.Scheme+"/"+n.Op != k {
				continue
			}
			matched = true
			status := StatusOK
			if n.P99Ns > ceiling {
				status = StatusRegressed
			}
			v.add(Item{
				Kind: "slo", Name: n.key(), Status: status,
				New:    fmt.Sprintf("p99=%.1fns", n.P99Ns),
				Detail: fmt.Sprintf("ceiling %.1fns", ceiling),
			})
		}
		if !matched {
			v.add(Item{
				Kind: "slo", Name: k, Status: StatusRegressed,
				Detail: fmt.Sprintf("ceiling %.1fns but no (scheme, op) rows observed", ceiling),
			})
		}
	}
	return v
}
