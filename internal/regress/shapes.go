package regress

import (
	"fmt"

	"nvmstar/internal/shapes"
)

// CompareShapes diffs two shape reports check by check: a pass/fail
// flip is a regression (or an improvement), and every measured value
// behind a check is compared against tol.ValueFrac — the drift that
// stays inside a shape's pass window but signals the simulation moved.
// On a fixed config the simulator is deterministic, so any value drift
// at all means the modeled machine changed.
func CompareShapes(old, new *shapes.Report, tol Tolerance) *Verdict {
	v := &Verdict{Kind: "shapes"}
	newByName := map[string]shapes.Check{}
	for _, c := range new.Checks {
		newByName[c.Name] = c
	}
	seen := map[string]bool{}
	for _, oc := range old.Checks {
		seen[oc.Name] = true
		nc, ok := newByName[oc.Name]
		if !ok {
			v.add(Item{Kind: "check", Name: oc.Name, Status: StatusMissing,
				Old: passFail(oc.Pass), Detail: "check disappeared from the new report"})
			continue
		}
		switch {
		case oc.Pass && !nc.Pass:
			v.add(Item{Kind: "check", Name: oc.Name, Status: StatusRegressed,
				Old: passFail(oc.Pass), New: passFail(nc.Pass), Detail: nc.Detail})
		case !oc.Pass && nc.Pass:
			v.add(Item{Kind: "check", Name: oc.Name, Status: StatusImproved,
				Old: passFail(oc.Pass), New: passFail(nc.Pass), Detail: nc.Detail})
		default:
			v.add(Item{Kind: "check", Name: oc.Name, Status: StatusOK,
				Old: passFail(oc.Pass), New: passFail(nc.Pass)})
		}
		compareValues(v, oc, nc, tol)
	}
	for _, nc := range new.Checks {
		if !seen[nc.Name] {
			v.add(Item{Kind: "check", Name: nc.Name, Status: StatusAdded, New: passFail(nc.Pass)})
		}
	}
	return v
}

// compareValues diffs the measured numbers behind one check.
func compareValues(v *Verdict, old, new shapes.Check, tol Tolerance) {
	if len(old.Values) != len(new.Values) {
		v.add(Item{Kind: "value", Name: old.Name, Status: StatusRegressed,
			Old:    fmt.Sprintf("%d values", len(old.Values)),
			New:    fmt.Sprintf("%d values", len(new.Values)),
			Detail: "measured value set changed shape"})
		return
	}
	for i := range old.Values {
		delta := relDelta(old.Values[i], new.Values[i])
		st := StatusOK
		if delta > tol.ValueFrac || delta < -tol.ValueFrac {
			// Direction is check-specific (a higher hit ratio is good, a
			// higher write ratio is bad); out-of-tolerance drift in either
			// direction needs a human to re-baseline deliberately.
			st = StatusRegressed
		}
		v.add(Item{
			Kind: "value", Name: old.Name, Detail: fmt.Sprintf("value[%d]", i), Status: st,
			Old: fmt.Sprintf("%.6g", old.Values[i]), New: fmt.Sprintf("%.6g", new.Values[i]),
			DeltaFrac: delta,
		})
	}
}

func passFail(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}

// DriftByName condenses a shapes verdict into one cell of text per
// check name — what starreport embeds as the report's drift column.
func DriftByName(v *Verdict) map[string]string {
	out := map[string]string{}
	worst := map[string]Status{}
	rank := map[Status]int{StatusOK: 0, StatusInfo: 0, StatusAdded: 1, StatusImproved: 2, StatusMissing: 3, StatusRegressed: 3}
	for _, it := range v.Items {
		prev, ok := worst[it.Name]
		if ok && rank[it.Status] <= rank[prev] {
			continue
		}
		worst[it.Name] = it.Status
		switch it.Status {
		case StatusOK, StatusInfo:
			out[it.Name] = "="
		case StatusAdded:
			out[it.Name] = "new"
		case StatusImproved:
			out[it.Name] = "improved"
		case StatusMissing:
			out[it.Name] = "**missing**"
		case StatusRegressed:
			if it.DeltaFrac != 0 {
				out[it.Name] = fmt.Sprintf("**%+.1f%%**", 100*it.DeltaFrac)
			} else {
				out[it.Name] = "**regressed**"
			}
		}
	}
	return out
}
