package regress

import (
	"fmt"
	"sort"

	"nvmstar/internal/provenance"
)

// ConfigMismatchError is the refusal CompareManifests returns when the
// two runs simulated different machines or sweeps: their cell digests
// measure different things and a diff would be meaningless.
type ConfigMismatchError struct{ Reason error }

func (e *ConfigMismatchError) Error() string {
	return fmt.Sprintf("regress: manifests are not comparable: %v", e.Reason)
}
func (e *ConfigMismatchError) Unwrap() error { return e.Reason }

// CompareManifests diffs two run manifests cell by cell. Digests are
// exact (the simulator is deterministic): any digest change is drift,
// localized to the workload x scheme x seed cell that diverged.
// Environment differences are informational — digests are
// machine-independent — but a differing run configuration (fingerprint,
// ops, seeds) refuses the comparison with *ConfigMismatchError.
func CompareManifests(old, new *provenance.Manifest, tol Tolerance) (*Verdict, error) {
	if err := old.Config.Comparable(new.Config); err != nil {
		return nil, &ConfigMismatchError{Reason: err}
	}
	v := &Verdict{Kind: "manifest"}
	envDiffs(v, old.Env, new.Env)

	// Fast path: the sealed digests cover config + every cell, so equal
	// seals mean zero drift without walking the cells — but only when
	// both seals actually verify, so a manifest whose cells were edited
	// without resealing still gets the per-cell walk.
	if old.Digest != "" && old.Digest == new.Digest &&
		old.Verify() == nil && new.Verify() == nil {
		v.add(Item{Kind: "cell", Name: "all cells", Status: StatusOK,
			Old: short(old.Digest), New: short(new.Digest),
			Detail: fmt.Sprintf("%d cells, sealed digests equal", len(new.Cells))})
		return v, nil
	}

	newIdx := new.CellIndex()
	seen := map[string]bool{}
	for _, oc := range old.Cells {
		key := oc.Key()
		seen[key] = true
		nc, ok := newIdx[key]
		if !ok {
			v.add(Item{Kind: "cell", Name: key, Status: StatusMissing, Old: short(oc.Digest),
				Detail: "cell disappeared from the new run"})
			continue
		}
		switch {
		case oc.Err != nc.Err:
			v.add(Item{Kind: "cell", Name: key, Status: StatusRegressed,
				Old: orText(oc.Err, "ok"), New: orText(nc.Err, "ok"),
				Detail: "cell error state changed"})
		case oc.Digest != nc.Digest:
			v.add(Item{Kind: "cell", Name: key, Status: StatusRegressed,
				Old: short(oc.Digest), New: short(nc.Digest),
				Detail: "results drifted"})
		default:
			v.add(Item{Kind: "cell", Name: key, Status: StatusOK,
				Old: short(oc.Digest), New: short(nc.Digest)})
		}
	}
	var added []string
	for key := range newIdx {
		if !seen[key] {
			added = append(added, key)
		}
	}
	sort.Strings(added)
	for _, key := range added {
		v.add(Item{Kind: "cell", Name: key, Status: StatusAdded, New: short(newIdx[key].Digest)})
	}
	return v, nil
}

// envDiffs reports environment changes as informational items.
func envDiffs(v *Verdict, old, new provenance.Env) {
	pairs := []struct{ name, o, n string }{
		{"go_version", old.GoVersion, new.GoVersion},
		{"goos", old.GOOS, new.GOOS},
		{"goarch", old.GOARCH, new.GOARCH},
		{"cpu", old.CPU, new.CPU},
		{"git_rev", old.GitRev, new.GitRev},
	}
	for _, p := range pairs {
		if p.o != p.n {
			v.add(Item{Kind: "env", Name: p.name, Status: StatusInfo, Old: p.o, New: p.n})
		}
	}
}

func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return digest
}

func orText(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}
