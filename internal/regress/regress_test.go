package regress

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nvmstar/internal/benchfmt"
	"nvmstar/internal/provenance"
	"nvmstar/internal/shapes"
)

func benchDoc() *benchfmt.Doc {
	return &benchfmt.Doc{
		Env: map[string]string{"goos": "linux", "goarch": "amd64", "go_version": "go1.24.0"},
		Results: []benchfmt.Result{
			{Name: "BenchmarkEngineWriteLine/star-8", Runs: 1000, NsPerOp: 824, BytesPerOp: 47, AllocsPerOp: 0},
			{Name: "BenchmarkRunnerMatrix/parallel=4-8", Runs: 1, NsPerOp: 4e9, BytesPerOp: -1, AllocsPerOp: -1,
				Metrics: map[string]float64{"speedup-vs-seq": 2.0}},
		},
	}
}

func TestCompareBenchSelfIsClean(t *testing.T) {
	v, err := CompareBench(benchDoc(), benchDoc(), DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if v.Regressed() {
		t.Fatalf("self-compare regressed: %s", v.Markdown())
	}
	if len(v.Items) == 0 {
		t.Fatal("self-compare compared nothing")
	}
}

func TestCompareBenchFlagsRegression(t *testing.T) {
	old, new := benchDoc(), benchDoc()
	new.Results[0].NsPerOp = 824 * 1.5 // +50%, far past the 25% noise floor
	v, err := CompareBench(old, new, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Regressed() {
		t.Fatal("50% ns/op slowdown not flagged")
	}
	regs := v.Regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkEngineWriteLine/star-8" || regs[0].Detail != "ns/op" {
		t.Fatalf("regression not localized to the offending benchmark: %+v", regs)
	}
	if !strings.Contains(v.Markdown(), "BenchmarkEngineWriteLine/star-8") {
		t.Fatal("markdown does not name the offending benchmark")
	}
}

func TestCompareBenchSpeedupWithinNoiseIsOK(t *testing.T) {
	old, new := benchDoc(), benchDoc()
	new.Results[0].NsPerOp = 824 * 0.9 // 10% faster: inside noise, not "improved"
	v, err := CompareBench(old, new, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if v.Regressed() || v.Counts()[StatusImproved] != 0 {
		t.Fatalf("10%% drift should be noise: %s", v.Markdown())
	}
}

func TestCompareBenchMetricDriftIsDirectionAgnostic(t *testing.T) {
	old, new := benchDoc(), benchDoc()
	new.Results[1].Metrics = map[string]float64{"speedup-vs-seq": 1.0} // halved
	v, err := CompareBench(old, new, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Regressed() {
		t.Fatal("halved speedup metric not flagged")
	}
}

func TestCompareBenchRefusesEnvMismatch(t *testing.T) {
	old, new := benchDoc(), benchDoc()
	new.Env["goarch"] = "arm64"
	_, err := CompareBench(old, new, DefaultTolerance())
	var mismatch *EnvMismatchError
	if !errors.As(err, &mismatch) || mismatch.Key != "goarch" {
		t.Fatalf("expected goarch EnvMismatchError, got %v", err)
	}
}

func TestCompareBenchMissingBenchmarkRegresses(t *testing.T) {
	old, new := benchDoc(), benchDoc()
	new.Results = new.Results[:1]
	v, err := CompareBench(old, new, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Regressed() {
		t.Fatal("vanished benchmark not flagged")
	}
}

func floorTolerance() Tolerance {
	tol := DefaultTolerance()
	// Keyed without the "-8" procs suffix: floors must match documents
	// from machines with any GOMAXPROCS.
	tol.MetricFloors = map[string]map[string]float64{
		"BenchmarkRunnerMatrix/parallel=4": {"speedup-vs-seq": 2.0},
	}
	tol.FloorMinCPUs = 4
	return tol
}

func TestCompareBenchFloorEnforced(t *testing.T) {
	doc := benchDoc()
	doc.Env["cpus"] = "8"
	v, err := CompareBench(doc, doc, floorTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if v.Regressed() {
		t.Fatalf("speedup 2.0 meets the 2.0 floor but regressed: %s", v.Markdown())
	}

	slow := benchDoc()
	slow.Env["cpus"] = "8"
	slow.Results[1].Metrics["speedup-vs-seq"] = 1.5
	// Keep old == new so only the floor (not relative metric drift)
	// can fire.
	v, err = CompareBench(slow, slow, floorTolerance())
	if err != nil {
		t.Fatal(err)
	}
	regs := v.Regressions()
	if len(regs) != 1 || regs[0].Kind != "floor" || regs[0].Detail != "speedup-vs-seq" {
		t.Fatalf("1.5 speedup under a 2.0 floor not localized to the floor item: %+v", regs)
	}
}

func TestCompareBenchFloorSkippedBelowMinCPUs(t *testing.T) {
	for _, cpus := range []string{"", "1", "2"} {
		doc := benchDoc()
		if cpus != "" {
			doc.Env["cpus"] = cpus
		}
		doc.Results[1].Metrics["speedup-vs-seq"] = 0.9 // would fail the floor
		v, err := CompareBench(doc, doc, floorTolerance())
		if err != nil {
			t.Fatal(err)
		}
		if v.Regressed() {
			t.Fatalf("cpus=%q: floor enforced on a machine that cannot pass it: %s", cpus, v.Markdown())
		}
		skipped := false
		for _, it := range v.Items {
			if it.Kind == "floor" && it.Status == StatusInfo {
				skipped = true
			}
		}
		if !skipped {
			t.Fatalf("cpus=%q: no info item explaining the skipped floor", cpus)
		}
	}
}

func TestCompareBenchFloorMissingMetricRegresses(t *testing.T) {
	doc := benchDoc()
	doc.Env["cpus"] = "8"
	doc.Results[1].Metrics = nil // floored metric vanished
	v, err := CompareBench(doc, doc, floorTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Regressed() {
		t.Fatalf("vanished floored metric not flagged: %s", v.Markdown())
	}
}

func shapeReport() *shapes.Report {
	return &shapes.Report{Checks: []shapes.Check{
		{Name: "Fig11: STAR write traffic ~1.08x WB", Pass: true, Detail: "measured 1.083x", Values: []float64{1.083}},
		{Name: "Fig12: STAR IPC >= 0.95x WB", Pass: true, Detail: "measured 0.981", Values: []float64{0.981}},
	}}
}

func TestCompareShapesSelfIsClean(t *testing.T) {
	if v := CompareShapes(shapeReport(), shapeReport(), DefaultTolerance()); v.Regressed() {
		t.Fatalf("self-compare regressed: %s", v.Markdown())
	}
}

func TestCompareShapesFlagsFlipAndDrift(t *testing.T) {
	old, new := shapeReport(), shapeReport()
	new.Checks[0].Pass = false
	new.Checks[1].Values = []float64{0.90} // ~8% drift, still passing the shape window
	v := CompareShapes(old, new, DefaultTolerance())
	if !v.Regressed() {
		t.Fatal("pass->fail flip not flagged")
	}
	var flip, drift bool
	for _, it := range v.Regressions() {
		if it.Kind == "check" && it.Name == old.Checks[0].Name {
			flip = true
		}
		if it.Kind == "value" && it.Name == old.Checks[1].Name {
			drift = true
		}
	}
	if !flip || !drift {
		t.Fatalf("missing flip/drift findings: %+v", v.Regressions())
	}
	d := DriftByName(v)
	if d[old.Checks[1].Name] == "" || d[old.Checks[1].Name] == "=" {
		t.Fatalf("drift column empty for drifted check: %v", d)
	}
	if d[old.Checks[0].Name] == "" {
		t.Fatalf("drift column empty for flipped check: %v", d)
	}
}

func manifest(digest0 string) *provenance.Manifest {
	m := &provenance.Manifest{
		Schema: provenance.SchemaVersion,
		Env:    provenance.Env{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 8},
		Config: provenance.RunConfig{Fingerprint: "fp", Ops: 1500, Seeds: 1, BaseSeed: 1,
			SeedMatrix: []uint64{1}, Workloads: []string{"hash"}, Parallelism: 4},
		Cells: []provenance.CellRecord{
			{Sweep: "matrix", Workload: "hash", Scheme: "star", Seed: 0, Digest: digest0},
			{Sweep: "matrix", Workload: "hash", Scheme: "wb", Seed: 0, Digest: strings.Repeat("bb", 32)},
		},
	}
	m.Seal()
	return m
}

func TestCompareManifestsSelfIsClean(t *testing.T) {
	v, err := CompareManifests(manifest(strings.Repeat("aa", 32)), manifest(strings.Repeat("aa", 32)), DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if v.Regressed() {
		t.Fatalf("self-compare regressed: %s", v.Markdown())
	}
}

func TestCompareManifestsLocalizesDrift(t *testing.T) {
	old := manifest(strings.Repeat("aa", 32))
	new := manifest(strings.Repeat("cc", 32))
	v, err := CompareManifests(old, new, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	regs := v.Regressions()
	if len(regs) != 1 || regs[0].Name != "matrix/hash/star/seed0" {
		t.Fatalf("drift not localized to the diverged cell: %+v", regs)
	}
}

func TestCompareManifestsSkipsFastPathOnStaleSeal(t *testing.T) {
	old := manifest(strings.Repeat("aa", 32))
	new := manifest(strings.Repeat("aa", 32))
	// Tamper with a cell after sealing: the seals still compare equal,
	// but the equal-seal fast path must not trust an unverifiable seal.
	new.Cells[0].Digest = strings.Repeat("cc", 32)
	v, err := CompareManifests(old, new, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if regs := v.Regressions(); len(regs) != 1 || regs[0].Name != "matrix/hash/star/seed0" {
		t.Fatalf("stale-seal tampering not caught: %+v", regs)
	}
}

func TestCompareManifestsRefusesConfigMismatch(t *testing.T) {
	old := manifest(strings.Repeat("aa", 32))
	new := manifest(strings.Repeat("aa", 32))
	new.Config.Ops = 9999
	new.Seal()
	_, err := CompareManifests(old, new, DefaultTolerance())
	var mismatch *ConfigMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("expected ConfigMismatchError, got %v", err)
	}
}

func TestCompareManifestsEnvDiffIsInfo(t *testing.T) {
	old := manifest(strings.Repeat("aa", 32))
	new := manifest(strings.Repeat("aa", 32))
	new.Env.CPU = "Other CPU"
	new.Env.GitRev = "deadbee"
	v, err := CompareManifests(old, new, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if v.Regressed() {
		t.Fatalf("env-only difference must not regress: %s", v.Markdown())
	}
	if v.Counts()[StatusInfo] == 0 {
		t.Fatal("env difference not surfaced as info")
	}
}

func TestLoadTolerancePartialKeepsDefaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tol.json")
	if err := os.WriteFile(path, []byte(`{"ns_per_op_frac": 0.5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tol, err := LoadTolerance(path)
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultTolerance()
	if tol.NsPerOpFrac != 0.5 || tol.ValueFrac != def.ValueFrac || len(tol.RequireSameEnv) != len(def.RequireSameEnv) {
		t.Fatalf("partial tolerance config mishandled: %+v", tol)
	}
}

func TestReadDocSniffsKinds(t *testing.T) {
	dir := t.TempDir()

	mPath := filepath.Join(dir, "manifest.json")
	if err := manifest(strings.Repeat("aa", 32)).WriteFile(mPath); err != nil {
		t.Fatal(err)
	}
	bPath := filepath.Join(dir, "bench.json")
	b, _ := benchDoc().Marshal()
	if err := os.WriteFile(bPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	sPath := filepath.Join(dir, "shapes.json")
	if err := shapeReport().WriteFile(sPath); err != nil {
		t.Fatal(err)
	}

	for path, kind := range map[string]string{mPath: "manifest", bPath: "bench", sPath: "shapes"} {
		doc, err := ReadDoc(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if doc.Kind != kind {
			t.Fatalf("%s sniffed as %q, want %q", path, doc.Kind, kind)
		}
		// Self-compare through the dispatcher must be clean for every kind.
		v, err := CompareDocs(doc, doc, DefaultTolerance())
		if err != nil {
			t.Fatal(err)
		}
		if v.Regressed() {
			t.Fatalf("%s self-compare regressed: %s", kind, v.Markdown())
		}
	}

	if _, err := CompareDocs(&Doc{Kind: "bench"}, &Doc{Kind: "shapes"}, DefaultTolerance()); err == nil {
		t.Fatal("kind mismatch not rejected")
	}
}
