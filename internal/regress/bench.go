package regress

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"nvmstar/internal/benchfmt"
)

// EnvMismatchError is the refusal CompareBench returns when the two
// documents were measured in different environments: their timing
// numbers are not comparable, and a diff would report machine
// differences as code regressions.
type EnvMismatchError struct {
	Key      string
	Old, New string
}

func (e *EnvMismatchError) Error() string {
	return fmt.Sprintf("regress: benchmark env provenance differs: %s = %q vs %q (numbers from different environments are not comparable)",
		e.Key, e.Old, e.New)
}

// CompareBench diffs two benchmark documents per benchmark name:
// ns/op, B/op and allocs/op deltas against the tolerance's noise
// thresholds, plus custom metrics (direction-agnostic). It refuses
// with *EnvMismatchError when any tol.RequireSameEnv key differs
// between the documents; a key present in only one document is
// reported as info, so documents predating a provenance field stay
// comparable.
func CompareBench(old, new *benchfmt.Doc, tol Tolerance) (*Verdict, error) {
	v := &Verdict{Kind: "bench"}
	for _, key := range tol.RequireSameEnv {
		o, okO := old.Env[key]
		n, okN := new.Env[key]
		if okO && okN && o != n {
			return nil, &EnvMismatchError{Key: key, Old: o, New: n}
		}
		if okO != okN {
			v.add(Item{Kind: "env", Name: key, Status: StatusInfo, Old: o, New: n,
				Detail: "present in only one document"})
		}
	}
	for key, o := range old.Env {
		if n, ok := new.Env[key]; ok && n != o && !contains(tol.RequireSameEnv, key) {
			v.add(Item{Kind: "env", Name: key, Status: StatusInfo, Old: o, New: n})
		}
	}

	newIdx := new.Index()
	seen := map[string]bool{}
	for _, ob := range old.Results {
		seen[ob.Name] = true
		nb, ok := newIdx[ob.Name]
		if !ok {
			v.add(Item{Kind: "bench", Name: ob.Name, Status: StatusMissing,
				Old:    fmt.Sprintf("%.4g ns/op", ob.NsPerOp),
				Detail: "benchmark disappeared from the new document"})
			continue
		}
		compareOne(v, ob, nb, tol)
	}
	names := make([]string, 0, len(newIdx))
	for name := range newIdx {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		v.add(Item{Kind: "bench", Name: name, Status: StatusAdded,
			New: fmt.Sprintf("%.4g ns/op", newIdx[name].NsPerOp)})
	}
	applyFloors(v, new, tol)
	return v, nil
}

// applyFloors enforces tol.MetricFloors — absolute minimums on the new
// document's custom metrics, independent of the baseline (comparing a
// document against itself still applies them, which is how the
// bench-parallel gate self-checks a fresh run). Floors only bind on
// machines with at least tol.FloorMinCPUs CPUs per the document's own
// "cpus" env record; under that, enforcement is skipped with an info
// item so single-core containers don't fail a parallelism gate they
// cannot physically pass.
func applyFloors(v *Verdict, new *benchfmt.Doc, tol Tolerance) {
	if len(tol.MetricFloors) == 0 {
		return
	}
	if tol.FloorMinCPUs > 0 {
		cpus, err := strconv.Atoi(new.Env["cpus"])
		if err != nil || cpus < tol.FloorMinCPUs {
			v.add(Item{Kind: "floor", Name: "metric floors", Status: StatusInfo,
				New: new.Env["cpus"],
				Detail: fmt.Sprintf("skipped: document records %q cpus, floors need >= %d",
					new.Env["cpus"], tol.FloorMinCPUs)})
			return
		}
	}
	// Floors are keyed without go test's "-<procs>" name suffix (which
	// varies with GOMAXPROCS across machines), but exact names work
	// too.
	idx := map[string]benchfmt.Result{}
	for name, res := range new.Index() {
		idx[name] = res
		if base := stripProcSuffix(name); base != name {
			if _, dup := idx[base]; !dup {
				idx[base] = res
			}
		}
	}
	names := make([]string, 0, len(tol.MetricFloors))
	for name := range tol.MetricFloors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		floors := tol.MetricFloors[name]
		metrics := make([]string, 0, len(floors))
		for m := range floors {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		nb, benchOK := idx[name]
		for _, m := range metrics {
			floor := floors[m]
			want := fmt.Sprintf(">= %.4g", floor)
			if !benchOK {
				v.add(Item{Kind: "floor", Name: name, Detail: m, Status: StatusMissing, Old: want})
				continue
			}
			val, ok := nb.Metrics[m]
			if !ok {
				v.add(Item{Kind: "floor", Name: name, Detail: m, Status: StatusMissing, Old: want})
				continue
			}
			st := StatusOK
			if val < floor {
				st = StatusRegressed
			}
			v.add(Item{Kind: "floor", Name: name, Detail: m, Status: st,
				Old: want, New: fmt.Sprintf("%.4g", val)})
		}
	}
}

// stripProcSuffix removes go test's trailing "-<procs>" from a
// benchmark name ("BenchmarkRunnerMatrix/parallel=4-8" ->
// "BenchmarkRunnerMatrix/parallel=4").
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// compareOne diffs one benchmark's dimensions. Lower is better for
// ns/op, B/op and allocs/op; custom metrics have unknown direction, so
// any drift beyond tolerance regresses (a metric that moved needs a
// human decision either way).
func compareOne(v *Verdict, old, new benchfmt.Result, tol Tolerance) {
	dim := func(name string, o, n, frac float64, directional bool) {
		delta := relDelta(o, n)
		st := classify(delta, frac)
		if !directional && st == StatusImproved {
			st = StatusRegressed
		}
		v.add(Item{
			Kind: "bench", Name: old.Name, Detail: name, Status: st,
			Old: fmt.Sprintf("%.4g", o), New: fmt.Sprintf("%.4g", n), DeltaFrac: delta,
		})
	}
	dim("ns/op", old.NsPerOp, new.NsPerOp, tol.NsPerOpFrac, true)
	if old.BytesPerOp >= 0 && new.BytesPerOp >= 0 {
		dim("B/op", float64(old.BytesPerOp), float64(new.BytesPerOp), tol.BytesPerOpFrac, true)
	}
	if old.AllocsPerOp >= 0 && new.AllocsPerOp >= 0 {
		dim("allocs/op", float64(old.AllocsPerOp), float64(new.AllocsPerOp), tol.AllocsPerOpFrac, true)
	}
	keys := make([]string, 0, len(old.Metrics))
	for k := range old.Metrics {
		if _, ok := new.Metrics[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		dim(k, old.Metrics[k], new.Metrics[k], tol.MetricFrac, false)
	}
}
