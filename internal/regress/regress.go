// Package regress is the repository's statistical regression
// observatory: a benchstat-style comparator over the three kinds of
// committed evaluation artifacts — BENCH_*.json benchmark documents,
// shapes.Report reproduction reports, and provenance run manifests.
// Each comparison yields a Verdict of per-item findings (ok /
// improved / regressed / missing / added) under a configurable noise
// tolerance; cmd/stardiff renders the verdict as markdown and `make
// regress` gates CI on it. Benchmark comparisons refuse outright when
// the two documents' env provenance differs (numbers from different
// machines are not comparable); manifest comparisons refuse when the
// run configurations differ (different sweeps are not comparable),
// but tolerate env differences because cell digests are
// machine-independent.
package regress

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
)

// Tolerance is the noise model of a comparison: relative drift below
// the per-dimension fraction is reported as ok. Loaded from an
// in-repo JSON config (see regress.tolerance.json) so the gate's
// sensitivity is reviewed like code.
type Tolerance struct {
	// Benchmark documents.
	NsPerOpFrac     float64 `json:"ns_per_op_frac"`
	BytesPerOpFrac  float64 `json:"bytes_per_op_frac"`
	AllocsPerOpFrac float64 `json:"allocs_per_op_frac"`
	MetricFrac      float64 `json:"metric_frac"` // custom bench metrics (direction-agnostic)
	// Shape reports: relative drift allowed per measured check value.
	ValueFrac float64 `json:"value_frac"`
	// Env keys that must match between two benchmark documents; a
	// mismatch refuses the comparison.
	RequireSameEnv []string `json:"require_same_env"`
	// MetricFloors maps benchmark name -> custom metric -> the minimum
	// acceptable value in the NEW document (absolute, unlike the
	// relative *Frac fields): the parallel-speedup gate. A floored
	// metric that is absent or below its floor regresses.
	MetricFloors map[string]map[string]float64 `json:"metric_floors,omitempty"`
	// Latency documents: relative p99 drift allowed per
	// (workload, scheme, op) row.
	LatencyFrac float64 `json:"latency_frac"`
	// LatencyP99CeilingsNs maps "scheme/op" -> the largest acceptable
	// p99 (ns) in the NEW latency document (absolute, like
	// MetricFloors): the tail-latency SLO gate. A gated pair with no
	// observed rows regresses.
	LatencyP99CeilingsNs map[string]float64 `json:"latency_p99_ceilings_ns,omitempty"`
	// FloorMinCPUs suspends floor enforcement when the new document's
	// "cpus" env key is missing or smaller: a 1-core container cannot
	// physically speed up a CPU-bound sweep, so its honest ~1.0x
	// speedup numbers are reported as info instead of failing the
	// gate. 0 enforces floors everywhere.
	FloorMinCPUs int `json:"floor_min_cpus,omitempty"`
}

// DefaultTolerance returns the gate's default noise model: benchmark
// timings are noisy (25%), sizes and allocation counts are mostly
// deterministic (10% / 1%), shape-check values on a fixed config are
// fully deterministic (2% headroom for float formatting churn).
func DefaultTolerance() Tolerance {
	return Tolerance{
		NsPerOpFrac:     0.25,
		BytesPerOpFrac:  0.10,
		AllocsPerOpFrac: 0.01,
		MetricFrac:      0.25,
		ValueFrac:       0.02,
		LatencyFrac:     0.25,
		RequireSameEnv:  []string{"goos", "goarch"},
	}
}

// LoadTolerance reads a tolerance config; fields absent from the file
// keep their defaults.
func LoadTolerance(path string) (Tolerance, error) {
	tol := DefaultTolerance()
	b, err := os.ReadFile(path)
	if err != nil {
		return tol, err
	}
	if err := json.Unmarshal(b, &tol); err != nil {
		return tol, fmt.Errorf("regress: %s: %w", path, err)
	}
	return tol, nil
}

// Status classifies one compared item.
type Status string

const (
	StatusOK        Status = "ok"
	StatusImproved  Status = "improved"
	StatusRegressed Status = "regressed"
	StatusMissing   Status = "missing" // present in the baseline, gone in the new run
	StatusAdded     Status = "added"   // new in this run; informational
	StatusInfo      Status = "info"
)

// Item is one compared quantity.
type Item struct {
	Kind      string // "bench", "check", "value", "cell", "env"
	Name      string // benchmark / check / cell identity
	Status    Status
	Old, New  string  // rendered values
	DeltaFrac float64 // relative drift where meaningful (0 otherwise)
	Detail    string
}

// Verdict is the outcome of one comparison.
type Verdict struct {
	Kind  string // "bench", "shapes" or "manifest"
	Items []Item
}

func (v *Verdict) add(it Item) { v.Items = append(v.Items, it) }

// Regressed reports whether any item regressed or went missing — the
// gate condition.
func (v *Verdict) Regressed() bool {
	for _, it := range v.Items {
		if it.Status == StatusRegressed || it.Status == StatusMissing {
			return true
		}
	}
	return false
}

// Regressions returns only the gate-failing items, for terse output.
func (v *Verdict) Regressions() []Item {
	var out []Item
	for _, it := range v.Items {
		if it.Status == StatusRegressed || it.Status == StatusMissing {
			out = append(out, it)
		}
	}
	return out
}

// Counts tallies items per status.
func (v *Verdict) Counts() map[Status]int {
	c := map[Status]int{}
	for _, it := range v.Items {
		c[it.Status]++
	}
	return c
}

// Markdown renders the verdict: a one-line summary, then a table of
// every non-ok item (the interesting rows), then the regression list.
func (v *Verdict) Markdown() string {
	var b strings.Builder
	counts := v.Counts()
	verdict := "no drift"
	if v.Regressed() {
		verdict = "REGRESSION"
	} else if counts[StatusImproved] > 0 {
		verdict = "improved"
	}
	fmt.Fprintf(&b, "## %s comparison: %s\n\n", v.Kind, verdict)
	fmt.Fprintf(&b, "%d compared — %d ok, %d improved, %d regressed, %d missing, %d added, %d info\n\n",
		len(v.Items), counts[StatusOK], counts[StatusImproved], counts[StatusRegressed],
		counts[StatusMissing], counts[StatusAdded], counts[StatusInfo])
	var interesting []Item
	for _, it := range v.Items {
		if it.Status != StatusOK {
			interesting = append(interesting, it)
		}
	}
	if len(interesting) == 0 {
		return b.String()
	}
	b.WriteString("| kind | name | old | new | Δ | status |\n|---|---|---|---|---|---|\n")
	for _, it := range interesting {
		delta := "—"
		if it.DeltaFrac != 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*it.DeltaFrac)
		}
		status := string(it.Status)
		if it.Status == StatusRegressed || it.Status == StatusMissing {
			status = "**" + status + "**"
		}
		name := it.Name
		if it.Detail != "" {
			name += " (" + it.Detail + ")"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s |\n",
			it.Kind, name, orDash(it.Old), orDash(it.New), delta, status)
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

// relDelta returns (new-old)/|old|; a change from exactly zero is
// normalized against 1 so it registers as full drift instead of Inf.
func relDelta(old, new float64) float64 {
	denom := math.Abs(old)
	if denom == 0 {
		denom = 1
	}
	return (new - old) / denom
}

// classify maps a relative delta where *lower is better* onto a
// status under tol.
func classify(delta, tol float64) Status {
	switch {
	case delta > tol:
		return StatusRegressed
	case delta < -tol:
		return StatusImproved
	default:
		return StatusOK
	}
}
