package regress

import (
	"path/filepath"
	"testing"
)

func latRows() []LatencyRow {
	return []LatencyRow{
		{Workload: "hash", Scheme: "wb", Op: "write", Count: 900,
			P50Ns: 80, P90Ns: 120, P99Ns: 300, P999Ns: 500, MaxNs: 512},
		{Workload: "hash", Scheme: "star", Op: "write", Count: 900,
			P50Ns: 90, P90Ns: 140, P99Ns: 400, P999Ns: 700, MaxNs: 1024},
		{Workload: "hash", Scheme: "star", Op: "read", Count: 300,
			P50Ns: 60, P90Ns: 70, P99Ns: 90, P999Ns: 100, MaxNs: 128},
	}
}

// TestLatencyDocRoundTrip pins the artifact format: written documents
// read back identically and sniff as the latency kind through the
// generic ReadDoc used by stardiff.
func TestLatencyDocRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lat.json")
	if err := WriteLatencyDoc(path, latRows()); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadLatencyDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != LatencyDocSchema || len(doc.Latency) != 3 {
		t.Fatalf("round-trip lost data: %+v", doc)
	}
	if doc.Latency[1].P99Ns != 400 || doc.Latency[1].key() != "hash/star/write" {
		t.Fatalf("row mangled: %+v", doc.Latency[1])
	}

	sniffed, err := ReadDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if sniffed.Kind != "latency" || sniffed.Latency == nil {
		t.Fatalf("ReadDoc sniffed kind %q, want latency", sniffed.Kind)
	}
}

// TestCompareLatencySelfIsClean: a self-comparison with in-bound
// ceilings produces no regressions — the shape of the passing CI gate.
func TestCompareLatencySelfIsClean(t *testing.T) {
	doc := &LatencyDoc{Schema: LatencyDocSchema, Latency: latRows()}
	tol := DefaultTolerance()
	tol.LatencyP99CeilingsNs = map[string]float64{"star/write": 450}
	v := CompareLatency(doc, doc, tol)
	if v.Regressed() {
		t.Fatalf("self-comparison regressed:\n%s", v.Markdown())
	}
	// The ceiling item is present and OK — the gate ran, not skipped.
	found := false
	for _, it := range v.Items {
		if it.Kind == "slo" && it.Name == "hash/star/write" {
			found = true
			if it.Status != StatusOK {
				t.Errorf("in-bound ceiling item status %q", it.Status)
			}
		}
	}
	if !found {
		t.Fatalf("no slo item for gated star/write:\n%s", v.Markdown())
	}
}

// TestCompareLatencyCeilingBreach is the stardiff exit-1 acceptance
// criterion in library form: a row whose p99 exceeds its configured
// ceiling regresses the verdict even when drift vs the baseline is
// zero (self-comparison).
func TestCompareLatencyCeilingBreach(t *testing.T) {
	doc := &LatencyDoc{Schema: LatencyDocSchema, Latency: latRows()}
	tol := DefaultTolerance()
	tol.LatencyP99CeilingsNs = map[string]float64{"star/write": 350} // p99 is 400
	v := CompareLatency(doc, doc, tol)
	if !v.Regressed() {
		t.Fatalf("p99 400 over ceiling 350 did not regress:\n%s", v.Markdown())
	}
}

// TestCompareLatencyDrift checks the relative p99 gate: drift beyond
// LatencyFrac regresses, improvements don't.
func TestCompareLatencyDrift(t *testing.T) {
	old := &LatencyDoc{Schema: LatencyDocSchema, Latency: latRows()}
	slower := latRows()
	slower[1].P99Ns *= 1.5 // +50% > default 25% tolerance
	v := CompareLatency(old, &LatencyDoc{Schema: LatencyDocSchema, Latency: slower}, DefaultTolerance())
	if !v.Regressed() {
		t.Fatalf("+50%% p99 drift did not regress:\n%s", v.Markdown())
	}

	faster := latRows()
	faster[1].P99Ns *= 0.5
	v = CompareLatency(old, &LatencyDoc{Schema: LatencyDocSchema, Latency: faster}, DefaultTolerance())
	if v.Regressed() {
		t.Fatalf("p99 improvement regressed:\n%s", v.Markdown())
	}
}

// TestCompareLatencyMissingRow: a baseline row absent from the new
// document regresses (the measurement silently vanished), and a gated
// ceiling with no matching rows regresses too.
func TestCompareLatencyMissingRow(t *testing.T) {
	old := &LatencyDoc{Schema: LatencyDocSchema, Latency: latRows()}
	pruned := &LatencyDoc{Schema: LatencyDocSchema, Latency: latRows()[:1]} // wb only
	v := CompareLatency(old, pruned, DefaultTolerance())
	if !v.Regressed() {
		t.Fatalf("dropped rows did not regress:\n%s", v.Markdown())
	}

	tol := DefaultTolerance()
	tol.LatencyP99CeilingsNs = map[string]float64{"star/persist": 1000} // never observed
	v = CompareLatency(old, old, tol)
	if !v.Regressed() {
		t.Fatalf("gated ceiling with no observed rows did not regress:\n%s", v.Markdown())
	}
}
