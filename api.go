// Package nvmstar is a library-grade reproduction of STAR (Huang &
// Hua, HPCA 2021): a write-friendly, fast-recovery persistence scheme
// for the security metadata — counter-mode-encryption counter blocks
// and SGX-integrity-tree (SIT) nodes — of secure non-volatile
// memories.
//
// The package simulates a complete secure-NVM machine: CPU cores with
// private L1/L2 and a shared L3, a memory controller housing a
// security-metadata cache, counter-mode encryption, a lazily updated
// SIT, and DDR-PCM-timed NVM. Four metadata persistence schemes plug
// into it:
//
//   - "wb":     ideal write-back cache, no crash recovery (baseline)
//   - "strict": write-through of every modified tree node (no stale
//     state, huge write amplification)
//   - "anubis": shadow-table based recovery (one extra write per
//     memory write)
//   - "star":   the paper's scheme — counter-MAC synergization packs
//     each parent-counter modification into 10 spare MAC bits of the
//     child being written (zero extra writes), bitmap lines in ADR
//     locate stale metadata, a multi-layer index accelerates the
//     post-crash scan, and a cache-tree verifies the recovery
//
// # Quick start
//
//	sys, _ := nvmstar.New(nvmstar.Options{Scheme: "star"})
//	sys.Store(0, []byte("hello"))
//	sys.PersistRange(0, 5)
//	sys.Crash()                   // power failure
//	rep, _ := sys.Recover()       // restore + verify security metadata
//	data := sys.Load(0, 5)        // decrypts and verifies integrity
//
// The internal packages expose every subsystem (engine, tree geometry,
// bitmap tracker, cache-tree, attack injection, workloads, experiment
// harness) for research use; this package is the stable surface.
package nvmstar

import (
	"context"
	"fmt"
	"io"
	"strings"

	"nvmstar/internal/bitmap"
	"nvmstar/internal/memline"
	"nvmstar/internal/secmem"
	"nvmstar/internal/sim"
	"nvmstar/internal/simcrypto"
	"nvmstar/internal/workload"
)

// LineSize is the machine's transfer granularity (64 bytes).
const LineSize = memline.Size

// Schemes lists the available metadata persistence schemes. The first
// four are the paper's evaluation set; "phoenix" is the concurrent
// work discussed in Section II-E (Anubis for tree nodes + Osiris-style
// relaxed persistence for counter blocks), provided as an extension.
func Schemes() []string { return []string{"wb", "strict", "anubis", "star", "phoenix"} }

// Workloads lists the paper's seven benchmark workloads (accepted by
// System.RunBenchmark); WorkloadsAll adds the extensions.
func Workloads() []string { return workload.Names() }

// WorkloadsAll lists every registered benchmark workload.
func WorkloadsAll() []string { return workload.AllNames() }

// Options configures a System. The zero value selects the paper's
// configuration (Table I) scaled to a laptop-runnable data size.
type Options struct {
	// Scheme selects the persistence scheme; default "star".
	Scheme string
	// DataBytes is the protected user-data capacity; default 256 MiB.
	// The NVM store is sparse, so 16 << 30 (the paper's 16 GB) works.
	DataBytes uint64
	// MetaCacheBytes sizes the metadata cache; default 512 KiB.
	MetaCacheBytes int
	// Cores is the core/thread count; default 8.
	Cores int
	// ADRBitmapLines is STAR's ADR allocation (L1+L2); default 16,
	// split 14+2 as in the paper. The minimum is 2: the split always
	// reserves at least one L2 index line, so at least one more line
	// must remain for L1. Values below 2 are rejected by New.
	ADRBitmapLines int
	// RealCrypto selects AES/SHA-256 primitives instead of the fast
	// simulation PRF.
	RealCrypto bool
	// Seed makes runs reproducible; default 1.
	Seed uint64
}

// System is a simulated secure-NVM machine.
type System struct {
	m *sim.Machine
}

// New builds a system. An unknown Options.Scheme or an
// Options.ADRBitmapLines below the minimum of 2 returns a descriptive
// error.
func New(opts Options) (*System, error) {
	cfg := sim.Default()
	if opts.Scheme != "" {
		if !validScheme(opts.Scheme) {
			return nil, fmt.Errorf("nvmstar: unknown scheme %q (valid schemes: %s)",
				opts.Scheme, strings.Join(Schemes(), ", "))
		}
		cfg.Scheme = opts.Scheme
	}
	if opts.DataBytes != 0 {
		cfg.DataBytes = opts.DataBytes
	}
	if opts.MetaCacheBytes != 0 {
		cfg.MetaCache.SizeBytes = opts.MetaCacheBytes
	}
	if opts.Cores != 0 {
		cfg.Cores = opts.Cores
	}
	if opts.ADRBitmapLines != 0 {
		if opts.ADRBitmapLines < 2 {
			return nil, fmt.Errorf(
				"nvmstar: ADRBitmapLines = %d: minimum is 2 (the split reserves at least one L2 index line plus at least one L1 line)",
				opts.ADRBitmapLines)
		}
		l2 := opts.ADRBitmapLines / 8
		if l2 == 0 {
			l2 = 1
		}
		cfg.Bitmap = bitmap.Config{ADRL1Lines: opts.ADRBitmapLines - l2, ADRL2Lines: l2}
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.RealCrypto {
		cfg.Suite = simcrypto.NewReal([16]byte{byte(cfg.Seed), 0x5a, 0x17, 0x99})
	}
	m, err := sim.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	m.SetCore(0)
	return &System{m: m}, nil
}

// Machine exposes the underlying simulated machine.
func (s *System) Machine() *sim.Machine { return s.m }

// Engine exposes the secure-memory engine (geometry, device, stats).
func (s *System) Engine() *secmem.Engine { return s.m.Engine() }

// OnCore selects which core issues subsequent memory operations.
func (s *System) OnCore(core int) { s.m.SetCore(core) }

// Load reads n bytes at addr through the cache hierarchy; misses
// decrypt and integrity-verify against the SIT. A violation (tampered
// or replayed NVM content) is reported through Err.
func (s *System) Load(addr uint64, n int) []byte {
	buf := make([]byte, n)
	s.m.Load(addr, buf)
	return buf
}

// Store writes data at addr into the cache hierarchy.
func (s *System) Store(addr uint64, data []byte) { s.m.Store(addr, data) }

// PersistRange flushes the cache lines covering [addr, addr+size) to
// NVM (CLWB + SFENCE): the lines are encrypted, MAC'd and — under
// STAR — carry their parent-counter modifications in the spare MAC
// bits.
func (s *System) PersistRange(addr uint64, size int) {
	s.m.Persist(addr, size)
	s.m.Fence()
}

// Flush writes back every dirty CPU cache line (graceful shutdown of
// the volatile hierarchy; metadata may still be dirty in the
// controller).
func (s *System) Flush() error { return s.m.FlushCPUCaches() }

// Crash models a power failure: volatile state vanishes,
// battery-backed ADR state reaches NVM, on-chip registers survive.
func (s *System) Crash() { s.m.Crash() }

// Recover restores the stale security metadata using the active
// scheme and verifies the result (STAR: cache-tree root; Anubis:
// shadow-table root). It returns secmem.ErrRecoveryVerification when
// an attack is detected and secmem.ErrRecoveryUnsupported under "wb".
func (s *System) Recover() (*secmem.RecoveryReport, error) { return s.m.Recover() }

// RunBenchmark executes one of the paper's workloads (see
// internal/workload: array, btree, hash, queue, rbtree, tpcc, ycsb)
// for ops measured operations and returns the measured statistics.
func (s *System) RunBenchmark(workload string, ops int) (*sim.Results, error) {
	return s.RunBenchmarkCtx(context.Background(), workload, ops)
}

// RunBenchmarkCtx is RunBenchmark under a context: cancellation or
// timeout aborts the workload mid-run (setup, measured steps and
// verification all poll the context) and returns ctx.Err().
func (s *System) RunBenchmarkCtx(ctx context.Context, workload string, ops int) (*sim.Results, error) {
	return s.m.RunCtx(ctx, workload, ops)
}

// validScheme reports whether name is in Schemes().
func validScheme(name string) bool {
	for _, s := range Schemes() {
		if s == name {
			return true
		}
	}
	return false
}

// Err returns the first integrity violation encountered by Load/Store
// (they cannot return errors through the heap.Memory interface).
func (s *System) Err() error { return s.m.Err() }

// SaveImage serializes the system's non-volatile state — the NVM
// contents, the sideband MACs and the on-chip registers — so a future
// process can resume it. Call Crash first: a power failure is the
// moment at which exactly this state (and nothing volatile) survives.
//
// The restoring process must build its System with the SAME Options
// (in particular the same Seed and RealCrypto choice, which determine
// the keys), then call RestoreImage followed by Recover.
func (s *System) SaveImage(w io.Writer) error {
	return s.m.Engine().SaveNonVolatile(w)
}

// RestoreImage loads a SaveImage snapshot. The system is in the
// crashed state afterwards; call Recover to restore the security
// metadata before reading.
func (s *System) RestoreImage(r io.Reader) error {
	return s.m.Engine().RestoreNonVolatile(r)
}

// Audit sweeps the entire NVM image and reports every metadata block
// and data line inconsistent with the integrity tree. Under the
// "strict" scheme (nothing legitimately stale) a non-empty result
// localizes an attack exactly; under lazy schemes dirty-cached blocks
// legitimately shadow their stale NVM images and are excluded.
func (s *System) Audit() (metadata []secmem.Violation, data []uint64) {
	return s.m.Engine().AuditTree(), s.m.Engine().AuditData()
}
